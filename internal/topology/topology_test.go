package topology

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"ncap/internal/netsim"
)

func TestConstructorsCount(t *testing.T) {
	cases := []struct {
		name              string
		s                 *Spec
		servers, clients  int
		racks, spines     int
	}{
		{"star", Star(3), 1, 3, 1, 0},
		{"rack", Rack(16, 8), 16, 8, 1, 0},
		{"fleet", Fleet(4, 2, 16, 8), 64, 32, 4, 2},
	}
	for _, c := range cases {
		if err := c.s.Validate(); err != nil {
			t.Errorf("%s: Validate: %v", c.name, err)
		}
		if c.s.Servers() != c.servers || c.s.Clients() != c.clients {
			t.Errorf("%s: %d servers / %d clients, want %d / %d",
				c.name, c.s.Servers(), c.s.Clients(), c.servers, c.clients)
		}
		if c.s.Nodes() != c.servers+c.clients {
			t.Errorf("%s: Nodes = %d", c.name, c.s.Nodes())
		}
		if c.s.Racks != c.racks || c.s.Spines != c.spines {
			t.Errorf("%s: racks=%d spines=%d, want %d/%d", c.name, c.s.Racks, c.s.Spines, c.racks, c.spines)
		}
	}
}

func TestNilSpecIsValid(t *testing.T) {
	var s *Spec
	if err := s.Validate(); err != nil {
		t.Fatalf("nil spec must select the legacy star: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	sv := Group{Name: "s", Role: RoleServer, Count: 1}
	cl := Group{Name: "c", Role: RoleClient, Count: 1}
	cases := []struct {
		name string
		s    Spec
		want string
	}{
		{"no racks", Spec{Groups: []Group{sv, cl}}, "at least one rack"},
		{"negative spines", Spec{Racks: 1, Spines: -1, Groups: []Group{sv, cl}}, "non-negative"},
		{"racks without spine", Spec{Racks: 2, Groups: []Group{sv, cl}}, "need a spine tier"},
		{"negative fwdelay", Spec{Racks: 1, FwDelay: -1, Groups: []Group{sv, cl}}, "forwarding delay"},
		{"no groups", Spec{Racks: 1}, "no node groups"},
		{"unnamed group", Spec{Racks: 1, Groups: []Group{{Role: RoleServer, Count: 1}, cl}}, "has no name"},
		{"duplicate name", Spec{Racks: 1, Groups: []Group{sv, {Name: "s", Role: RoleClient, Count: 1}}}, "duplicate group name"},
		{"bad role", Spec{Racks: 1, Groups: []Group{{Name: "x", Role: "router", Count: 1}, sv, cl}}, "unknown role"},
		{"zero count", Spec{Racks: 1, Groups: []Group{{Name: "x", Role: RoleServer, Count: 0}, cl}}, "count must be positive"},
		{"rack out of range", Spec{Racks: 1, Groups: []Group{{Name: "x", Role: RoleServer, Count: 1, Rack: 1}, cl}}, "out of range"},
		{"spread plus rack", Spec{Racks: 2, Spines: 1, Groups: []Group{{Name: "x", Role: RoleServer, Count: 2, Spread: true, Rack: 1}, cl}}, "mutually exclusive"},
		{"client cores", Spec{Racks: 1, Groups: []Group{sv, {Name: "c", Role: RoleClient, Count: 1, Cores: 2}}}, "no modeled cores"},
		{"server target", Spec{Racks: 1, Groups: []Group{{Name: "s", Role: RoleServer, Count: 1, Target: "s"}, cl}}, "client-group field"},
		{"unknown target", Spec{Racks: 1, Groups: []Group{sv, {Name: "c", Role: RoleClient, Count: 1, Target: "ghost"}}}, "unknown server group"},
		{"no servers", Spec{Racks: 1, Groups: []Group{cl}}, "no server nodes"},
		{"no clients", Spec{Racks: 1, Groups: []Group{sv}}, "no client nodes"},
		{"node cap", Spec{Racks: 1, Groups: []Group{{Name: "s", Role: RoleServer, Count: MaxNodes, Rack: 0}, cl}}, "construction cap"},
		{"bad uplink", Spec{Racks: 1, Uplink: &netsim.LinkConfig{}, Groups: []Group{sv, cl}}, "bandwidth"},
		{"bad group link", Spec{Racks: 1, Groups: []Group{sv, {Name: "c", Role: RoleClient, Count: 1,
			Link: &netsim.LinkConfig{BandwidthBps: 1, Latency: -1, QueueBytes: 1}}}}, "latency"},
	}
	for _, c := range cases {
		err := c.s.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.want)
		}
	}
}

func TestServerGroupLookup(t *testing.T) {
	s := Rack(4, 2)
	if g := s.ServerGroup("servers"); g == nil || g.Count != 4 {
		t.Fatalf("ServerGroup(servers) = %+v", g)
	}
	if s.ServerGroup("clients") != nil {
		t.Fatal("client group must not resolve as a server group")
	}
	if s.ServerGroup("missing") != nil {
		t.Fatal("unknown group must resolve to nil")
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.json")
	want := Fleet(2, 2, 4, 2)
	want.FwDelay = DefaultFwDelay
	if err := want.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip diverged:\n got %+v\nwant %+v", got, want)
	}
}

func TestReadFileRejects(t *testing.T) {
	dir := t.TempDir()
	write := func(name, blob string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(blob), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	if _, err := ReadFile(filepath.Join(dir, "absent.json")); err == nil {
		t.Fatal("missing file must error")
	}
	// A misspelled knob must not silently vanish.
	p := write("unknown.json", `{"Racks":1,"Shelves":2,"Groups":[]}`)
	if _, err := ReadFile(p); err == nil || !strings.Contains(err.Error(), "Shelves") {
		t.Fatalf("unknown field: err = %v", err)
	}
	// Syntactically valid JSON, semantically invalid graph.
	p = write("invalid.json", `{"Racks":2,"Groups":[{"Name":"s","Role":"server","Count":1}]}`)
	if _, err := ReadFile(p); err == nil || !strings.Contains(err.Error(), "spine") {
		t.Fatalf("invalid graph: err = %v", err)
	}
}
