// Package trace samples the signals the paper plots over time: network
// receive/transmit bandwidth, core utilization, effective frequency,
// C-state residency, and NCAP wake-interrupt markers (the "INT (wake)"
// annotations in Figs. 8 and 9).
package trace

import (
	"io"

	"ncap/internal/cpu"
	"ncap/internal/nic"
	"ncap/internal/power"
	"ncap/internal/sim"
	"ncap/internal/stats"
)

// Sampler periodically snapshots a server node's signals into aligned
// time series.
type Sampler struct {
	eng      *sim.Engine
	chip     *cpu.Chip
	dev      *nic.NIC
	interval sim.Duration
	ticker   *sim.Ticker

	// wakeCount returns the cumulative count of NCAP proactive-transition
	// interrupts (IT_HIGH boosts + CIT wakes); nil when NCAP is off.
	wakeCount func() int64

	BWRx  *stats.TimeSeries // bytes/s received
	BWTx  *stats.TimeSeries // bytes/s transmitted
	Util  *stats.TimeSeries // mean core utilization [0,1]
	Freq  *stats.TimeSeries // effective frequency, GHz
	TC1   *stats.TimeSeries // fraction of interval cores spent in C1
	TC3   *stats.TimeSeries // ... in C3
	TC6   *stats.TimeSeries // ... in C6
	Wakes *stats.TimeSeries // NCAP wake interrupts in the interval

	prevRx, prevTx         int64
	prevBusy               []sim.Duration
	prevC1, prevC3, prevC6 []sim.Duration
	prevWakes              int64
	lastSample             sim.Time
}

// NewSampler builds a sampler over the server chip and NIC. wakeCount may
// be nil.
func NewSampler(chip *cpu.Chip, dev *nic.NIC, interval sim.Duration, wakeCount func() int64) *Sampler {
	if interval <= 0 {
		panic("trace: interval must be positive")
	}
	n := len(chip.Cores())
	s := &Sampler{
		eng: chip.Engine(), chip: chip, dev: dev, interval: interval,
		wakeCount: wakeCount,
		BWRx:      &stats.TimeSeries{Name: "bw_rx_bytes_per_s"},
		BWTx:      &stats.TimeSeries{Name: "bw_tx_bytes_per_s"},
		Util:      &stats.TimeSeries{Name: "util"},
		Freq:      &stats.TimeSeries{Name: "freq_ghz"},
		TC1:       &stats.TimeSeries{Name: "t_c1"},
		TC3:       &stats.TimeSeries{Name: "t_c3"},
		TC6:       &stats.TimeSeries{Name: "t_c6"},
		Wakes:     &stats.TimeSeries{Name: "int_wake"},
		prevBusy:  make([]sim.Duration, n),
		prevC1:    make([]sim.Duration, n),
		prevC3:    make([]sim.Duration, n),
		prevC6:    make([]sim.Duration, n),
	}
	s.ticker = sim.NewTicker(s.eng, interval, s.sample)
	return s
}

// Start begins sampling; the first point lands one interval from now.
func (s *Sampler) Start() {
	s.lastSample = s.eng.Now()
	s.snapshotBaseline()
	s.ticker.Start()
}

// Stop halts sampling.
func (s *Sampler) Stop() { s.ticker.Stop() }

func (s *Sampler) snapshotBaseline() {
	s.prevRx = s.dev.RxBytes.Value()
	s.prevTx = s.dev.TxBytes.Value()
	for i, c := range s.chip.Cores() {
		s.prevBusy[i] = c.BusyTime()
		s.prevC1[i] = c.CTime(power.C1)
		s.prevC3[i] = c.CTime(power.C3)
		s.prevC6[i] = c.CTime(power.C6)
	}
	if s.wakeCount != nil {
		s.prevWakes = s.wakeCount()
	}
}

func (s *Sampler) sample() {
	now := s.eng.Now()
	dt := now - s.lastSample
	if dt <= 0 {
		return
	}
	secs := dt.Seconds()

	rx, tx := s.dev.RxBytes.Value(), s.dev.TxBytes.Value()
	s.BWRx.Add(now, float64(rx-s.prevRx)/secs)
	s.BWTx.Add(now, float64(tx-s.prevTx)/secs)
	s.prevRx, s.prevTx = rx, tx

	var busy, c1, c3, c6 sim.Duration
	cores := s.chip.Cores()
	for i, c := range cores {
		b := c.BusyTime()
		busy += b - s.prevBusy[i]
		s.prevBusy[i] = b

		v1, v3, v6 := c.CTime(power.C1), c.CTime(power.C3), c.CTime(power.C6)
		c1 += v1 - s.prevC1[i]
		c3 += v3 - s.prevC3[i]
		c6 += v6 - s.prevC6[i]
		s.prevC1[i], s.prevC3[i], s.prevC6[i] = v1, v3, v6
	}
	denom := float64(dt) * float64(len(cores))
	s.Util.Add(now, float64(busy)/denom)
	s.TC1.Add(now, float64(c1)/denom)
	s.TC3.Add(now, float64(c3)/denom)
	s.TC6.Add(now, float64(c6)/denom)
	s.Freq.Add(now, meanFreqGHz(s.chip))

	if s.wakeCount != nil {
		w := s.wakeCount()
		s.Wakes.Add(now, float64(w-s.prevWakes))
		s.prevWakes = w
	} else {
		s.Wakes.Add(now, 0)
	}
	s.lastSample = now
}

// meanFreqGHz averages the effective frequency across cores: identical to
// the chip frequency under chip-wide DVFS, and the fleet-representative
// value under per-core domains (the Sec. 7 extension).
func meanFreqGHz(chip *cpu.Chip) float64 {
	cores := chip.Cores()
	var sum float64
	for _, c := range cores {
		sum += float64(c.Domain().Current().MHz)
	}
	return sum / float64(len(cores)) / 1000
}

// Series returns all sampled series, aligned.
func (s *Sampler) Series() []*stats.TimeSeries {
	return []*stats.TimeSeries{s.BWRx, s.BWTx, s.Util, s.Freq, s.TC1, s.TC3, s.TC6, s.Wakes}
}

// WriteCSV emits the aligned series as one CSV table.
func (s *Sampler) WriteCSV(w io.Writer) error {
	return stats.MultiCSV(w, s.Series()...)
}
