package trace

import (
	"strings"
	"testing"

	"ncap/internal/cpu"
	"ncap/internal/netsim"
	"ncap/internal/nic"
	"ncap/internal/power"
	"ncap/internal/sim"
)

func rig() (*sim.Engine, *cpu.Chip, *nic.NIC) {
	eng := sim.NewEngine()
	tab := power.DefaultTable()
	chip := cpu.New(eng, 4, tab, power.DefaultModel(), tab.Max())
	dev := nic.New(eng, 1, nic.DefaultConfig())
	dev.SetIRQ(func() {})
	return eng, chip, dev
}

func TestSamplerAlignedSeries(t *testing.T) {
	eng, chip, dev := rig()
	s := NewSampler(chip, dev, sim.Millisecond, nil)
	s.Start()
	eng.Run(10 * sim.Millisecond)
	s.Stop()
	series := s.Series()
	if len(series) != 8 {
		t.Fatalf("series = %d, want 8", len(series))
	}
	for _, ts := range series {
		if len(ts.Points) != 10 {
			t.Fatalf("%s has %d points, want 10", ts.Name, len(ts.Points))
		}
	}
}

func TestSamplerBandwidthAndUtil(t *testing.T) {
	eng, chip, dev := rig()
	s := NewSampler(chip, dev, sim.Millisecond, nil)
	s.Start()
	// 1 ms of busy work on core 0 during the first interval, and one
	// received packet (186 wire bytes).
	chip.Core(0).Submit(&cpu.Work{Cycles: 3_100_000, Prio: cpu.PrioTask})
	dev.Receive(netsim.NewRequest(2, 1, 1, make([]byte, 120)))
	eng.Run(2 * sim.Millisecond)

	if got := s.Util.Points[0].V; got < 0.24 || got > 0.26 {
		t.Fatalf("util[0] = %v, want 0.25 (1 of 4 cores busy)", got)
	}
	if got := s.Util.Points[1].V; got != 0 {
		t.Fatalf("util[1] = %v, want 0", got)
	}
	wantBps := float64(186) / 0.001
	if got := s.BWRx.Points[0].V; got != wantBps {
		t.Fatalf("bwrx[0] = %v, want %v", got, wantBps)
	}
}

func TestSamplerCStateFractions(t *testing.T) {
	eng, chip, dev := rig()
	// Park core 1 in C6 permanently.
	chip.Core(1).SetIdleDecider(deepDecider{})
	chip.Core(1).Submit(&cpu.Work{Cycles: 310, Prio: cpu.PrioTask})
	s := NewSampler(chip, dev, sim.Millisecond, nil)
	s.Start()
	eng.Run(5 * sim.Millisecond)
	// From the second interval on, core 1 is fully in C6: 1/4 of core time.
	if got := s.TC6.Points[3].V; got < 0.24 || got > 0.26 {
		t.Fatalf("t_c6 = %v, want 0.25", got)
	}
}

type deepDecider struct{}

func (deepDecider) SelectIdleState(*cpu.Core) power.CState { return power.C6 }
func (deepDecider) OnWake(*cpu.Core, sim.Duration)         {}

func TestSamplerWakeMarkers(t *testing.T) {
	eng, chip, dev := rig()
	count := int64(0)
	s := NewSampler(chip, dev, sim.Millisecond, func() int64 { return count })
	s.Start()
	eng.Schedule(1500*sim.Microsecond, func() { count = 3 })
	eng.Run(3 * sim.Millisecond)
	if s.Wakes.Points[0].V != 0 || s.Wakes.Points[1].V != 3 || s.Wakes.Points[2].V != 0 {
		t.Fatalf("wake markers = %v", s.Wakes.Points)
	}
}

func TestSamplerFreqTracksChip(t *testing.T) {
	eng, chip, dev := rig()
	s := NewSampler(chip, dev, sim.Millisecond, nil)
	s.Start()
	eng.Schedule(1500*sim.Microsecond, func() { chip.SetPState(chip.Table().Min()) })
	eng.Run(3 * sim.Millisecond)
	if got := s.Freq.Points[0].V; got != 3.1 {
		t.Fatalf("freq[0] = %v", got)
	}
	if got := s.Freq.Points[2].V; got != 0.8 {
		t.Fatalf("freq[2] = %v", got)
	}
}

func TestSamplerCSV(t *testing.T) {
	eng, chip, dev := rig()
	s := NewSampler(chip, dev, sim.Millisecond, nil)
	s.Start()
	eng.Run(2 * sim.Millisecond)
	var sb strings.Builder
	if err := s.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "time_ms,bw_rx_bytes_per_s,bw_tx_bytes_per_s,util,freq_ghz,t_c1,t_c3,t_c6,int_wake\n") {
		t.Fatalf("header = %q", strings.SplitN(out, "\n", 2)[0])
	}
	if got := strings.Count(out, "\n"); got != 3 {
		t.Fatalf("lines = %d, want header + 2 rows", got)
	}
}

func TestSamplerStop(t *testing.T) {
	eng, chip, dev := rig()
	s := NewSampler(chip, dev, sim.Millisecond, nil)
	s.Start()
	eng.Run(2 * sim.Millisecond)
	s.Stop()
	eng.Run(10 * sim.Millisecond)
	if len(s.Util.Points) != 2 {
		t.Fatalf("points after stop = %d", len(s.Util.Points))
	}
}
