package workload

import (
	"strings"
	"testing"
)

// FuzzParseTrace: the parser must never panic, hang, or accept a
// document that fails re-validation — malformed JSONL, out-of-order
// timestamps, truncated files and garbage all return errors.
func FuzzParseTrace(f *testing.F) {
	var sb strings.Builder
	if err := sampleTrace().Write(&sb); err != nil {
		f.Fatal(err)
	}
	good := sb.String()
	f.Add(good)
	f.Add("")
	f.Add("{}\n")
	f.Add(`{"schema":"ncap-trace-v1","clients":1}` + "\n")
	f.Add(`{"schema":"ncap-trace-v1","clients":1}` + "\n" + `{"records":0}` + "\n")
	f.Add(`{"schema":"ncap-trace-v9","clients":1}` + "\n" + `{"records":0}` + "\n")
	f.Add(`{"schema":"ncap-trace-v1","clients":1}` + "\n" +
		`{"t_ns":5,"client":0,"req_bytes":64}` + "\n" +
		`{"t_ns":1,"client":0,"req_bytes":64}` + "\n" + `{"records":2}` + "\n")
	f.Add(good[:len(good)/3])                        // truncated mid-record
	f.Add(good + good)                               // two documents
	f.Add(strings.ReplaceAll(good, `"t_ns"`, `"T"`)) // unknown fields
	f.Add("\x00\x01\x02\njunk\n")
	f.Add(`{"schema":"ncap-trace-v1","clients":4097}` + "\n" + `{"records":0}` + "\n")
	f.Add(`{"schema":"ncap-trace-v1","clients":1,"min_gap_ns":-5}` + "\n" + `{"records":0}` + "\n")

	f.Fuzz(func(t *testing.T, data string) {
		tr, err := ParseTrace([]byte(data))
		if err != nil {
			return
		}
		// Anything the parser accepts must satisfy the validator and
		// round-trip through the canonical serialization.
		if verr := tr.Validate(); verr != nil {
			t.Fatalf("parser accepted an invalid trace: %v", verr)
		}
		var out strings.Builder
		if werr := tr.Write(&out); werr != nil {
			t.Fatalf("accepted trace does not serialize: %v", werr)
		}
		back, rerr := ParseTrace([]byte(out.String()))
		if rerr != nil {
			t.Fatalf("canonical serialization does not re-parse: %v", rerr)
		}
		if back.Hash() != tr.Hash() {
			t.Fatal("canonical round trip changed the hash")
		}
	})
}
