package workload

import (
	"fmt"
	"math"
	"strings"

	"ncap/internal/sim"
)

// Built-in scenario names.
const (
	// ScenarioStationary is the legacy built-in burst-client traffic: a
	// run configured with it is byte-identical to one with no Spec at
	// all. It exists so scenario sweeps carry their own baseline row.
	ScenarioStationary = "stationary"
	// ScenarioDiurnal modulates the arrival rate sinusoidally — the
	// day/night load curve, compressed to simulation scale.
	ScenarioDiurnal = "diurnal"
	// ScenarioFlashCrowd holds a steady base rate, then steps to a peak
	// and decays back exponentially (a link on the front page).
	ScenarioFlashCrowd = "flashcrowd"
	// ScenarioHeavyTail keeps Poisson arrivals but draws response sizes
	// from a bounded Pareto — a few responses dominate the bytes.
	ScenarioHeavyTail = "heavytail"
	// ScenarioIncast fires fan-in beats: every client emits Fanin
	// same-instant requests on distinct flows at a steady beat, the
	// synchronized-reader pattern that stresses pacing and queues.
	ScenarioIncast = "incast"
	// ScenarioScaleOut spreads Poisson arrivals across many flows per
	// client — the many-connection service mesh shape.
	ScenarioScaleOut = "scaleout"
)

// ScenarioNames lists the built-in scenarios in presentation order.
func ScenarioNames() []string {
	return []string{
		ScenarioStationary, ScenarioDiurnal, ScenarioFlashCrowd,
		ScenarioHeavyTail, ScenarioIncast, ScenarioScaleOut,
	}
}

// ScenarioUsage returns the comma-separated name list for CLI help.
func ScenarioUsage() string { return strings.Join(ScenarioNames(), ", ") }

// ParseScenario resolves a scenario name or returns an error listing the
// valid names.
func ParseScenario(name string) (Scenario, error) {
	for _, n := range ScenarioNames() {
		if name == n {
			return Scenario{Name: name}, nil
		}
	}
	return Scenario{}, fmt.Errorf("workload: unknown scenario %q (want %s)", name, ScenarioUsage())
}

// Scenario parameterizes one generated arrival schedule. Zero-valued
// fields take per-scenario defaults (see withDefaults); the JSON form is
// part of the cluster config, so every parameter is cache-keyed.
type Scenario struct {
	// Name selects the generator; empty means no scenario (legacy
	// traffic, like ScenarioStationary).
	Name string `json:"name,omitempty"`
	// Flows is the per-client flow fan-out (scaleout; default 256).
	Flows int `json:"flows,omitempty"`
	// PeriodMs is the modulation period (diurnal; default 100) or beat
	// period (incast; default 10) in simulated milliseconds.
	PeriodMs float64 `json:"period_ms,omitempty"`
	// Amp is the diurnal modulation depth in [0,1] (default 0.75).
	Amp float64 `json:"amp,omitempty"`
	// Peak is the flash-crowd rate multiplier at onset (default 3).
	Peak float64 `json:"peak,omitempty"`
	// StartFrac places the flash-crowd onset as a fraction of the
	// generation horizon (default 0.4).
	StartFrac float64 `json:"start_frac,omitempty"`
	// DecayMs is the flash-crowd exponential decay constant (default 50).
	DecayMs float64 `json:"decay_ms,omitempty"`
	// Alpha is the bounded-Pareto shape (heavytail; default 1.3).
	Alpha float64 `json:"alpha,omitempty"`
	// MinRespBytes/MaxRespBytes bound the Pareto response sizes
	// (heavytail; defaults 128 and 262144).
	MinRespBytes int `json:"min_resp_bytes,omitempty"`
	MaxRespBytes int `json:"max_resp_bytes,omitempty"`
	// Fanin is the per-beat same-instant request count (incast;
	// default 32).
	Fanin int `json:"fanin,omitempty"`
	// PaceNs is the per-client pacing floor the generated trace carries
	// (MinGap); zero takes the profile's request spacing.
	PaceNs int64 `json:"pace_ns,omitempty"`
}

// Replay reports whether the scenario replays a generated schedule
// (anything but empty/stationary).
func (s Scenario) Replay() bool { return s.Name != "" && s.Name != ScenarioStationary }

// Validate reports parameter errors.
func (s Scenario) Validate() error {
	if s.Name != "" {
		if _, err := ParseScenario(s.Name); err != nil {
			return err
		}
	}
	switch {
	case s.Flows < 0 || s.Flows > maxFlowID:
		return fmt.Errorf("workload: scenario flows %d out of range [0, %d]", s.Flows, maxFlowID)
	case s.PeriodMs < 0 || s.DecayMs < 0:
		return fmt.Errorf("workload: scenario periods must be non-negative")
	case s.Amp < 0 || s.Amp > 1:
		return fmt.Errorf("workload: scenario amp %g out of range [0,1]", s.Amp)
	case s.Peak != 0 && s.Peak < 1:
		return fmt.Errorf("workload: scenario peak %g must be >= 1", s.Peak)
	case s.StartFrac < 0 || s.StartFrac >= 1:
		return fmt.Errorf("workload: scenario start fraction %g out of range [0,1)", s.StartFrac)
	case s.Alpha < 0:
		return fmt.Errorf("workload: scenario alpha %g must be positive", s.Alpha)
	case s.MinRespBytes < 0 || s.MaxRespBytes < 0 || s.MaxRespBytes > maxRespBytes:
		return fmt.Errorf("workload: scenario response bounds out of range")
	case s.MinRespBytes > 0 && s.MaxRespBytes > 0 && s.MinRespBytes > s.MaxRespBytes:
		return fmt.Errorf("workload: scenario min response %d above max %d", s.MinRespBytes, s.MaxRespBytes)
	case s.Fanin < 0 || s.Fanin > 1024:
		return fmt.Errorf("workload: scenario fanin %d out of range [0, 1024]", s.Fanin)
	case s.PaceNs < 0 || s.PaceNs > int64(sim.Second):
		return fmt.Errorf("workload: scenario pace %dns out of range [0, 1s]", s.PaceNs)
	}
	return nil
}

// withDefaults resolves zero-valued parameters to the per-scenario
// defaults documented on the fields.
func (s Scenario) withDefaults() Scenario {
	def := func(v *float64, d float64) {
		if *v == 0 {
			*v = d
		}
	}
	switch s.Name {
	case ScenarioDiurnal:
		def(&s.PeriodMs, 100)
		def(&s.Amp, 0.75)
	case ScenarioFlashCrowd:
		def(&s.Peak, 3)
		def(&s.StartFrac, 0.4)
		def(&s.DecayMs, 50)
	case ScenarioHeavyTail:
		def(&s.Alpha, 1.3)
		if s.MinRespBytes == 0 {
			s.MinRespBytes = 128
		}
		if s.MaxRespBytes == 0 {
			s.MaxRespBytes = 256 * 1024
		}
	case ScenarioIncast:
		def(&s.PeriodMs, 10)
		if s.Fanin == 0 {
			s.Fanin = 32
		}
	case ScenarioScaleOut:
		if s.Flows == 0 {
			s.Flows = 256
		}
	}
	return s
}

// peakFactor bounds the scenario's instantaneous rate relative to the
// mean offered load (for record-count estimation).
func (s Scenario) peakFactor() float64 {
	r := s.withDefaults()
	switch r.Name {
	case ScenarioDiurnal:
		return 1 + r.Amp
	case ScenarioFlashCrowd:
		return r.Peak
	}
	return 1
}

// EstimateRecords upper-bounds the generated record count so configs can
// be rejected before an oversized generation is attempted.
func (s Scenario) EstimateRecords(loadRPS float64, horizon sim.Duration) int64 {
	return int64(loadRPS*horizon.Seconds()*s.peakFactor()*1.25) + 64
}

// GenParams carries the cluster-side inputs to trace generation. The
// package deliberately does not import the application profile; the
// cluster passes the few fields the generators need.
type GenParams struct {
	// LoadRPS is the mean aggregate offered load across all clients.
	LoadRPS float64
	// Clients is the client fan-out; each gets a private RNG stream.
	Clients int
	// Horizon is the schedule length (warmup + measurement window).
	Horizon sim.Duration
	// Seed is the run seed the per-client streams derive from.
	Seed uint64
	// ReqBytes is the request payload size (the profile's).
	ReqBytes int
	// Pace is the default pacing floor (the profile's request spacing),
	// used when the scenario does not set its own.
	Pace sim.Duration
}

// Generate builds the scenario's trace. Determinism: client i's records
// come from the stream seeded (Seed, "workload/<name>/client<i>") drawn
// in event order, then a stable k-way merge — the same trace at any
// worker count, and a different stream per scenario so editing one never
// perturbs another.
func (s Scenario) Generate(p GenParams) (*Trace, error) {
	sc := s.withDefaults()
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if !sc.Replay() {
		return nil, fmt.Errorf("workload: scenario %q drives the built-in burst clients and has no trace", s.Name)
	}
	switch {
	case p.LoadRPS <= 0:
		return nil, fmt.Errorf("workload: generation needs a positive load")
	case p.Clients < 1 || p.Clients > maxTraceClients:
		return nil, fmt.Errorf("workload: generation clients %d out of range [1, %d]", p.Clients, maxTraceClients)
	case p.Horizon <= 0 || p.Horizon > maxTraceTime:
		return nil, fmt.Errorf("workload: generation horizon %v out of range", p.Horizon)
	}
	if p.ReqBytes < minReqBytes {
		p.ReqBytes = minReqBytes
	}
	if p.ReqBytes > maxReqBytes {
		p.ReqBytes = maxReqBytes
	}
	if est := sc.EstimateRecords(p.LoadRPS, p.Horizon); est > MaxTraceRecords {
		return nil, fmt.Errorf("workload: scenario %s at %.0f rps over %v needs ~%d records (limit %d); shorten the windows or lower the load",
			sc.Name, p.LoadRPS, p.Horizon, est, MaxTraceRecords)
	}

	pace := sim.Duration(sc.PaceNs)
	if pace == 0 {
		pace = p.Pace
	}
	r0 := p.LoadRPS / float64(p.Clients)
	perClient := make([][]Record, p.Clients)
	for i := 0; i < p.Clients; i++ {
		rng := sim.NewRand(p.Seed, fmt.Sprintf("workload/%s/client%d", sc.Name, i))
		perClient[i] = sc.genClient(p, i, r0, rng)
	}

	t := &Trace{Clients: p.Clients, MinGap: pace}
	t.Records = mergeByTime(perClient)
	if len(t.Records) > MaxTraceRecords {
		return nil, fmt.Errorf("workload: scenario %s generated %d records (limit %d)", sc.Name, len(t.Records), MaxTraceRecords)
	}
	return t, nil
}

// genClient generates one client's records in time order. The receiver
// is already default-resolved and validated.
func (s Scenario) genClient(p GenParams, client int, r0 float64, rng *sim.Rand) []Record {
	rec := func(t sim.Time) Record {
		return Record{T: t, Client: client, Req: p.ReqBytes}
	}
	switch s.Name {
	case ScenarioDiurnal:
		period := msToDur(s.PeriodMs)
		amp := s.Amp
		times := poissonTimes(rng, r0*(1+amp), p.Horizon, func(t sim.Time) float64 {
			return r0 * (1 + amp*math.Sin(2*math.Pi*float64(t)/float64(period)))
		})
		out := make([]Record, len(times))
		for i, t := range times {
			out[i] = rec(t)
		}
		return out

	case ScenarioFlashCrowd:
		t0 := sim.Time(s.StartFrac * float64(p.Horizon))
		decay := msToDur(s.DecayMs)
		times := poissonTimes(rng, r0*s.Peak, p.Horizon, func(t sim.Time) float64 {
			if t < t0 {
				return r0
			}
			return r0 * (1 + (s.Peak-1)*math.Exp(-float64(t-t0)/float64(decay)))
		})
		out := make([]Record, len(times))
		for i, t := range times {
			out[i] = rec(t)
		}
		return out

	case ScenarioHeavyTail:
		times := poissonTimes(rng, r0, p.Horizon, nil)
		out := make([]Record, len(times))
		for i, t := range times {
			out[i] = rec(t)
			out[i].Resp = boundedPareto(rng, s.Alpha, s.MinRespBytes, s.MaxRespBytes)
		}
		return out

	case ScenarioIncast:
		beat := msToDur(s.PeriodMs)
		// Beat cadence follows the offered load: each beat carries Fanin
		// requests, so beats arrive every Fanin/r0 seconds, at the
		// configured period when that matches the default load.
		if r0 > 0 {
			beat = sim.Duration(float64(s.Fanin) / r0 * float64(sim.Second))
		}
		if beat < 1 {
			beat = 1
		}
		var out []Record
		offset := beat * sim.Duration(client) / sim.Duration(p.Clients)
		for t := offset; t < p.Horizon; t += beat {
			// Per-beat jitter desynchronizes clients without reordering
			// (jitter stays well under the beat gap).
			at := t + rng.Duration(0, beat/8)
			if at >= p.Horizon {
				break
			}
			for f := 0; f < s.Fanin; f++ {
				r := rec(at)
				r.Flow = f
				out = append(out, r)
			}
		}
		return out

	case ScenarioScaleOut:
		times := poissonTimes(rng, r0, p.Horizon, nil)
		out := make([]Record, len(times))
		for i, t := range times {
			out[i] = rec(t)
			out[i].Flow = rng.Intn(s.Flows)
		}
		return out
	}
	return nil
}

// poissonTimes draws a (possibly nonhomogeneous) Poisson arrival process
// on [0, horizon) by thinning against lambdaMax: candidates arrive at
// rate lambdaMax and survive with probability intensity(t)/lambdaMax. A
// nil intensity is the homogeneous process at lambdaMax.
func poissonTimes(rng *sim.Rand, lambdaMax float64, horizon sim.Duration, intensity func(sim.Time) float64) []sim.Time {
	if lambdaMax <= 0 {
		return nil
	}
	meanGap := sim.Duration(float64(sim.Second) / lambdaMax)
	if meanGap < 1 {
		meanGap = 1
	}
	var out []sim.Time
	t := sim.Time(0)
	for {
		gap := rng.Exp(meanGap)
		if gap < 1 {
			gap = 1 // integer-ns clock: always advance
		}
		t += gap
		if t >= horizon {
			return out
		}
		if intensity == nil || rng.Float64()*lambdaMax <= intensity(t) {
			out = append(out, t)
		}
	}
}

// boundedPareto draws from a Pareto(alpha) truncated to [lo, hi] via the
// inverse CDF.
func boundedPareto(rng *sim.Rand, alpha float64, lo, hi int) int {
	if lo >= hi {
		return lo
	}
	u := rng.Float64()
	l, h := float64(lo), float64(hi)
	ratio := math.Pow(l/h, alpha)
	x := l / math.Pow(1-u*(1-ratio), 1/alpha)
	if x < l {
		x = l
	}
	if x > h {
		x = h
	}
	return int(x)
}

// mergeByTime merges per-client time-sorted record slices into one
// globally non-decreasing stream; ties break by client index, giving the
// same-instant FIFO order replay preserves.
func mergeByTime(perClient [][]Record) []Record {
	total := 0
	for _, recs := range perClient {
		total += len(recs)
	}
	out := make([]Record, 0, total)
	idx := make([]int, len(perClient))
	for len(out) < total {
		best := -1
		var bestT sim.Time
		for c, recs := range perClient {
			if idx[c] >= len(recs) {
				continue
			}
			if best == -1 || recs[idx[c]].T < bestT {
				best, bestT = c, recs[idx[c]].T
			}
		}
		out = append(out, perClient[best][idx[best]])
		idx[best]++
	}
	return out
}

func msToDur(ms float64) sim.Duration {
	d := sim.Duration(ms * float64(sim.Millisecond))
	if d < 1 {
		d = 1
	}
	return d
}
