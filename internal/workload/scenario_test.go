package workload

import (
	"strings"
	"testing"

	"ncap/internal/sim"
)

func genParams() GenParams {
	return GenParams{
		LoadRPS:  40_000,
		Clients:  3,
		Horizon:  50 * sim.Millisecond,
		Seed:     1,
		ReqBytes: 120,
		Pace:     500 * sim.Nanosecond,
	}
}

func TestParseScenario(t *testing.T) {
	for _, name := range ScenarioNames() {
		sc, err := ParseScenario(name)
		if err != nil || sc.Name != name {
			t.Fatalf("ParseScenario(%q) = %+v, %v", name, sc, err)
		}
	}
	if _, err := ParseScenario("nope"); err == nil || !strings.Contains(err.Error(), ScenarioUsage()) {
		t.Fatalf("unknown scenario error %v does not list valid names", err)
	}
	if !strings.Contains(ScenarioUsage(), ScenarioIncast) {
		t.Fatal("usage string missing a scenario")
	}
}

func TestScenarioReplay(t *testing.T) {
	if (Scenario{}).Replay() || (Scenario{Name: ScenarioStationary}).Replay() {
		t.Fatal("empty/stationary scenarios must not replay")
	}
	for _, name := range ScenarioNames()[1:] {
		if !(Scenario{Name: name}).Replay() {
			t.Fatalf("%s must replay", name)
		}
	}
}

// TestGenerateDeterministic: same seed → byte-identical trace (same
// canonical hash); different seed → different schedule.
func TestGenerateDeterministic(t *testing.T) {
	for _, name := range ScenarioNames()[1:] {
		sc := Scenario{Name: name}
		a, err := sc.Generate(genParams())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, _ := sc.Generate(genParams())
		if a.Hash() != b.Hash() {
			t.Errorf("%s: same seed produced different traces", name)
		}
		p := genParams()
		p.Seed = 2
		c, _ := sc.Generate(p)
		if c.Hash() == a.Hash() {
			t.Errorf("%s: different seeds produced identical traces", name)
		}
	}
}

// TestGenerateValidSorted: every generated trace passes strict validation
// (so it round-trips through the parser) and carries roughly the offered
// load.
func TestGenerateValidSorted(t *testing.T) {
	for _, name := range ScenarioNames()[1:] {
		tr, err := Scenario{Name: name}.Generate(genParams())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("%s: generated trace invalid: %v", name, err)
		}
		var sb strings.Builder
		if err := tr.Write(&sb); err != nil {
			t.Fatalf("%s: write: %v", name, err)
		}
		back, err := ParseTrace([]byte(sb.String()))
		if err != nil {
			t.Fatalf("%s: generated trace does not re-parse: %v", name, err)
		}
		if back.Hash() != tr.Hash() {
			t.Fatalf("%s: parse round trip changed the hash", name)
		}
		// ~2000 expected records (40k rps × 50 ms); generators modulate the
		// rate but must stay in the right decade.
		if n := len(tr.Records); n < 500 || n > 5000 {
			t.Errorf("%s: %d records for ~2000 expected", name, n)
		}
	}
}

func TestDiurnalModulates(t *testing.T) {
	p := genParams()
	tr, err := Scenario{Name: ScenarioDiurnal, PeriodMs: 50}.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	// With a 50 ms period over a 50 ms horizon, the first half-period
	// (rising sine) must out-arrive the second (falling below base rate).
	half := p.Horizon / 2
	var first, second int
	for _, r := range tr.Records {
		if r.T < half {
			first++
		} else {
			second++
		}
	}
	if first <= second {
		t.Fatalf("diurnal modulation invisible: %d arrivals then %d", first, second)
	}
}

func TestFlashCrowdSteps(t *testing.T) {
	p := genParams()
	sc := Scenario{Name: ScenarioFlashCrowd, Peak: 4, StartFrac: 0.5, DecayMs: 1000}
	tr, err := sc.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	onset := sim.Time(0.5 * float64(p.Horizon))
	window := p.Horizon / 5 // compare equal windows straddling the onset
	var before, after int
	for _, r := range tr.Records {
		switch {
		case r.T >= onset-window && r.T < onset:
			before++
		case r.T >= onset && r.T < onset+window:
			after++
		}
	}
	// Slow decay holds the rate near 4× through the after-window.
	if after < 2*before {
		t.Fatalf("flash crowd did not step: %d arrivals before onset, %d after", before, after)
	}
}

func TestHeavyTailBounds(t *testing.T) {
	sc := Scenario{Name: ScenarioHeavyTail, MinRespBytes: 256, MaxRespBytes: 64 * 1024}
	tr, err := sc.Generate(genParams())
	if err != nil {
		t.Fatal(err)
	}
	var maxSeen int
	for _, r := range tr.Records {
		if r.Resp < 256 || r.Resp > 64*1024 {
			t.Fatalf("response %d outside configured bounds", r.Resp)
		}
		if r.Resp > maxSeen {
			maxSeen = r.Resp
		}
	}
	// The tail must actually reach past the body (alpha 1.3 over a 256×
	// range produces >10× the minimum routinely).
	if maxSeen < 10*256 {
		t.Fatalf("heavy tail never left the body: max response %d", maxSeen)
	}
}

func TestIncastBeats(t *testing.T) {
	tr, err := Scenario{Name: ScenarioIncast, Fanin: 16}.Generate(genParams())
	if err != nil {
		t.Fatal(err)
	}
	// Same-instant groups of exactly Fanin requests on distinct flows.
	groups := map[sim.Time]map[int]bool{}
	for _, r := range tr.Records {
		key := r.T
		if groups[key] == nil {
			groups[key] = map[int]bool{}
		}
		if groups[key][r.Flow] {
			t.Fatalf("beat at %v repeats flow %d", r.T, r.Flow)
		}
		groups[key][r.Flow] = true
	}
	full := 0
	for _, flows := range groups {
		if len(flows) == 16 {
			full++
		}
	}
	if full < len(groups)/2 {
		t.Fatalf("only %d/%d beats carry the full fan-in", full, len(groups))
	}
}

func TestScaleOutSpreadsFlows(t *testing.T) {
	tr, err := Scenario{Name: ScenarioScaleOut, Flows: 64}.Generate(genParams())
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, r := range tr.Records {
		if r.Flow < 0 || r.Flow >= 64 {
			t.Fatalf("flow %d outside [0,64)", r.Flow)
		}
		seen[r.Flow] = true
	}
	if len(seen) < 32 {
		t.Fatalf("~2000 arrivals touched only %d/64 flows", len(seen))
	}
}

func TestGenerateRejects(t *testing.T) {
	p := genParams()
	if _, err := (Scenario{Name: ScenarioStationary}).Generate(p); err == nil {
		t.Fatal("stationary generated a trace")
	}
	if _, err := (Scenario{}).Generate(p); err == nil {
		t.Fatal("empty scenario generated a trace")
	}
	bad := p
	bad.LoadRPS = 0
	if _, err := (Scenario{Name: ScenarioDiurnal}).Generate(bad); err == nil {
		t.Fatal("zero load accepted")
	}
	huge := p
	huge.Horizon = 10_000 * sim.Second
	_, err := (Scenario{Name: ScenarioDiurnal}).Generate(huge)
	if err == nil || !strings.Contains(err.Error(), "records") {
		t.Fatalf("oversized generation error = %v, want record-limit refusal", err)
	}
}

func TestEstimateRecordsCoversActual(t *testing.T) {
	p := genParams()
	for _, name := range ScenarioNames()[1:] {
		sc := Scenario{Name: name}
		tr, err := sc.Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		if est := sc.EstimateRecords(p.LoadRPS, p.Horizon); int64(len(tr.Records)) > est {
			t.Errorf("%s: generated %d records, estimate said <= %d", name, len(tr.Records), est)
		}
	}
}
