package workload

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"ncap/internal/sim"
)

// TraceSchema identifies the trace document format. The canonical
// serialization is JSONL: a header line, one line per record in
// non-decreasing timestamp order, and a trailer line carrying the record
// count — so truncation is always detectable.
const TraceSchema = "ncap-trace-v1"

// Service classes. The empty class is latency-critical request/response
// traffic; ClassBulk is one-way background traffic with no SLA (the
// VM-migration/analytics stream of Sec. 4.1), which NCAP's templates
// must not match.
const (
	ClassLatencyCritical = ""
	ClassBulk            = "bulk"
)

// Format limits. They bound what a parser accepts from untrusted input;
// the generators stay far inside them.
const (
	// MaxTraceRecords bounds a trace's size (~4M records keeps even a
	// full-window high-load capture comfortably in memory).
	MaxTraceRecords = 4 << 20
	maxTraceClients = 4096
	maxTraceTime    = sim.Time(1) << 60
	minReqBytes     = 2 // NCAP's ReqMonitor matches at least two payload bytes
	maxReqBytes     = 1 << 20
	maxRespBytes    = 1 << 26
	maxFlowID       = 1 << 20
	maxLineBytes    = 1 << 16
)

// Record is one scheduled send. T is the *intended* send time: replay
// charges latency from it even when pacing delays the actual send
// (coordinated-omission safety).
type Record struct {
	// T is the scheduled send time in nanoseconds since run start.
	T sim.Time `json:"t_ns"`
	// Client is the 0-based index of the sending client node.
	Client int `json:"client"`
	// Flow distinguishes concurrent flows from one client (incast and
	// scale-out scenarios); purely an annotation for latency-critical
	// traffic today.
	Flow int `json:"flow,omitempty"`
	// Req is the request payload size in bytes.
	Req int `json:"req_bytes"`
	// Resp, when positive, overrides the server's drawn response body
	// size for this request (heavy-tail scenarios pin the distribution
	// at the source). Zero lets the server draw from its profile.
	Resp int `json:"resp_bytes,omitempty"`
	// Class is the service class: "" latency-critical, "bulk" one-way
	// background traffic.
	Class string `json:"class,omitempty"`
}

// Trace is a parsed or generated arrival schedule.
type Trace struct {
	// Clients is the client fan-out the schedule was built for; records
	// address clients by index below it.
	Clients int
	// MinGap is the per-client pacing floor: replay never sends two of a
	// client's records closer than this, charging latency from the
	// schedule when pacing lags. Zero for captured traces (their sends
	// are already spaced).
	MinGap sim.Duration
	// Records are the sends, globally sorted by non-decreasing T.
	Records []Record
}

// header and trailer are the first and last canonical JSONL lines.
type traceHeader struct {
	Schema   string `json:"schema"`
	Clients  int    `json:"clients"`
	MinGapNs int64  `json:"min_gap_ns,omitempty"`
}

type traceTrailer struct {
	Records int `json:"records"`
}

// Validate reports format violations: client out of range, decreasing
// timestamps, out-of-bounds sizes, unknown service classes.
func (t *Trace) Validate() error {
	if t.Clients < 1 || t.Clients > maxTraceClients {
		return fmt.Errorf("workload: trace clients %d out of range [1, %d]", t.Clients, maxTraceClients)
	}
	if t.MinGap < 0 || t.MinGap > sim.Second {
		return fmt.Errorf("workload: trace min gap %v out of range [0, 1s]", t.MinGap)
	}
	if len(t.Records) > MaxTraceRecords {
		return fmt.Errorf("workload: trace has %d records (limit %d)", len(t.Records), MaxTraceRecords)
	}
	var prev sim.Time
	for i := range t.Records {
		if err := t.Records[i].validate(t.Clients, prev); err != nil {
			return fmt.Errorf("record %d: %w", i, err)
		}
		prev = t.Records[i].T
	}
	return nil
}

func (r *Record) validate(clients int, prev sim.Time) error {
	switch {
	case r.T < 0 || r.T > maxTraceTime:
		return fmt.Errorf("workload: timestamp %d out of range", int64(r.T))
	case r.T < prev:
		return fmt.Errorf("workload: timestamp %d decreases (previous %d)", int64(r.T), int64(prev))
	case r.Client < 0 || r.Client >= clients:
		return fmt.Errorf("workload: client %d out of range [0, %d)", r.Client, clients)
	case r.Flow < 0 || r.Flow >= maxFlowID:
		return fmt.Errorf("workload: flow %d out of range [0, %d)", r.Flow, maxFlowID)
	case r.Req < minReqBytes || r.Req > maxReqBytes:
		return fmt.Errorf("workload: request size %d out of range [%d, %d]", r.Req, minReqBytes, maxReqBytes)
	case r.Resp < 0 || r.Resp > maxRespBytes:
		return fmt.Errorf("workload: response size %d out of range [0, %d]", r.Resp, maxRespBytes)
	case r.Class != ClassLatencyCritical && r.Class != ClassBulk:
		return fmt.Errorf("workload: unknown service class %q", r.Class)
	}
	return nil
}

// Write emits the canonical serialization: header, records, trailer, one
// JSON document per line. Hash is computed over exactly these bytes.
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw) // Encode appends the newline itself
	if err := enc.Encode(traceHeader{Schema: TraceSchema, Clients: t.Clients, MinGapNs: int64(t.MinGap)}); err != nil {
		return err
	}
	for i := range t.Records {
		if err := enc.Encode(&t.Records[i]); err != nil {
			return err
		}
	}
	if err := enc.Encode(traceTrailer{Records: len(t.Records)}); err != nil {
		return err
	}
	return bw.Flush()
}

// Hash returns the hex SHA-256 of the canonical serialization — the
// trace's identity in the runner's content-addressed cache key.
func (t *Trace) Hash() string {
	h := sha256.New()
	if err := t.Write(h); err != nil {
		// sha256 never errors; Write only propagates writer failures.
		panic(fmt.Sprintf("workload: hashing trace: %v", err))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// ReadTrace parses and validates a canonical trace from r. It is strict:
// unknown fields, out-of-order timestamps, out-of-range values, content
// after the trailer and truncation (missing or short trailer) are all
// errors. It never panics on malformed input (see FuzzParseTrace).
func ReadTrace(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 4096), maxLineBytes)

	line, err := nextLine(sc)
	if err != nil {
		return nil, fmt.Errorf("workload: trace header: %w", err)
	}
	var hdr traceHeader
	if err := strictUnmarshal(line, &hdr); err != nil {
		return nil, fmt.Errorf("workload: trace header: %w", err)
	}
	if hdr.Schema != TraceSchema {
		return nil, fmt.Errorf("workload: unknown trace schema %q (want %s)", hdr.Schema, TraceSchema)
	}
	t := &Trace{Clients: hdr.Clients, MinGap: sim.Duration(hdr.MinGapNs)}
	if err := t.Validate(); err != nil {
		return nil, err
	}

	var prev sim.Time
	for {
		line, err = nextLine(sc)
		if err == io.EOF {
			return nil, fmt.Errorf("workload: truncated trace: no trailer after %d records", len(t.Records))
		}
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: %w", len(t.Records)+2, err)
		}
		var tr traceTrailer
		if strictUnmarshal(line, &tr) == nil {
			if tr.Records != len(t.Records) {
				return nil, fmt.Errorf("workload: trailer records %d, trace has %d", tr.Records, len(t.Records))
			}
			if _, err := nextLine(sc); err != io.EOF {
				return nil, fmt.Errorf("workload: content after trace trailer")
			}
			return t, nil
		}
		if len(t.Records) >= MaxTraceRecords {
			return nil, fmt.Errorf("workload: trace exceeds %d records", MaxTraceRecords)
		}
		var rec Record
		if err := strictUnmarshal(line, &rec); err != nil {
			return nil, fmt.Errorf("workload: trace line %d: %w", len(t.Records)+2, err)
		}
		if err := rec.validate(t.Clients, prev); err != nil {
			return nil, fmt.Errorf("workload: trace line %d: %w", len(t.Records)+2, err)
		}
		prev = rec.T
		t.Records = append(t.Records, rec)
	}
}

// ParseTrace parses a trace from an in-memory document.
func ParseTrace(data []byte) (*Trace, error) { return ReadTrace(bytes.NewReader(data)) }

// ReadTraceFile loads a trace from a file.
func ReadTraceFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	t, err := ReadTrace(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}

// WriteTraceFile writes the canonical serialization to a file.
func WriteTraceFile(path string, t *Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// nextLine returns the next non-empty line, io.EOF at end of input.
func nextLine(sc *bufio.Scanner) ([]byte, error) {
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) > 0 {
			return line, nil
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return nil, io.EOF
}

// strictUnmarshal decodes one JSON document rejecting unknown fields and
// trailing content — what discriminates record lines from the trailer.
func strictUnmarshal(line []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing content after JSON document")
	}
	return nil
}
