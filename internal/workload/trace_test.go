package workload

import (
	"path/filepath"
	"strings"
	"testing"

	"ncap/internal/sim"
)

func sampleTrace() *Trace {
	return &Trace{
		Clients: 2,
		MinGap:  500 * sim.Nanosecond,
		Records: []Record{
			{T: 0, Client: 0, Req: 120},
			{T: 1000, Client: 1, Req: 64, Resp: 4096},
			{T: 1000, Client: 0, Flow: 7, Req: 120, Class: ClassBulk},
			{T: 2500, Client: 1, Req: 64},
		},
	}
}

func TestTraceRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var sb strings.Builder
	if err := tr.Write(&sb); err != nil {
		t.Fatalf("write: %v", err)
	}
	text := sb.String()
	if !strings.HasPrefix(text, `{"schema":"ncap-trace-v1"`) {
		t.Fatalf("serialization does not lead with the schema: %q", text[:40])
	}
	if !strings.Contains(text, `{"records":4}`) {
		t.Fatal("serialization missing the record-count trailer")
	}
	got, err := ParseTrace([]byte(text))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if got.Clients != tr.Clients || got.MinGap != tr.MinGap || len(got.Records) != len(tr.Records) {
		t.Fatalf("round trip mangled the trace: %+v", got)
	}
	for i, r := range got.Records {
		if r != tr.Records[i] {
			t.Fatalf("record %d round-tripped to %+v, want %+v", i, r, tr.Records[i])
		}
	}
	if got.Hash() != tr.Hash() {
		t.Fatal("round trip changed the canonical hash")
	}
}

func TestTraceFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.trace")
	tr := sampleTrace()
	if err := WriteTraceFile(path, tr); err != nil {
		t.Fatalf("write file: %v", err)
	}
	got, err := ReadTraceFile(path)
	if err != nil {
		t.Fatalf("read file: %v", err)
	}
	if got.Hash() != tr.Hash() {
		t.Fatal("file round trip changed the canonical hash")
	}
}

func TestTraceHashDiscriminates(t *testing.T) {
	a, b := sampleTrace(), sampleTrace()
	b.Records[3].T++ // one nanosecond in one record
	if a.Hash() == b.Hash() {
		t.Fatal("hash did not change with the trace contents")
	}
	if h := a.Hash(); len(h) != 64 {
		t.Fatalf("hash %q is not hex SHA-256", h)
	}
}

func TestParseTraceRejects(t *testing.T) {
	canon := func(mut func(*Trace)) string {
		tr := sampleTrace()
		mut(tr)
		var sb strings.Builder
		if err := tr.Write(&sb); err != nil {
			t.Fatalf("write: %v", err)
		}
		return sb.String()
	}
	good := canon(func(*Trace) {})
	cases := []struct {
		name, text, want string
	}{
		{"empty", "", "header"},
		{"wrong schema", strings.Replace(good, "ncap-trace-v1", "ncap-trace-v9", 1), "schema"},
		{"not json", "not json at all\n", "header"},
		{"unknown header field", `{"schema":"ncap-trace-v1","clients":2,"bogus":1}` + "\n" + `{"records":0}` + "\n", "bogus"},
		{"unknown record field", strings.Replace(good, `"req_bytes":120`, `"req_bytes":120,"zzz":1`, 1), "zzz"},
		{"out of order", strings.Replace(good, `{"t_ns":2500,"client":1,"req_bytes":64}`,
			`{"t_ns":900,"client":1,"req_bytes":64}`, 1), "decreases"},
		{"client out of range", strings.Replace(good, `{"t_ns":2500,"client":1,"req_bytes":64}`,
			`{"t_ns":2500,"client":9,"req_bytes":64}`, 1), "client"},
		{"request too small", strings.Replace(good, `"req_bytes":64}`, `"req_bytes":1}`, 1), "request size"},
		{"unknown class", strings.Replace(good, `"class":"bulk"`, `"class":"mystery"`, 1), "class"},
		{"truncated mid-stream", good[:len(good)/2], ""},
		{"missing trailer", strings.Replace(good, `{"records":4}`+"\n", "", 1), "truncated"},
		{"trailer count mismatch", strings.Replace(good, `{"records":4}`, `{"records":3}`, 1), "trailer"},
		{"content after trailer", good + `{"t_ns":9000,"client":0,"req_bytes":64}` + "\n", "after"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseTrace([]byte(tc.text))
			if err == nil {
				t.Fatal("parse accepted a malformed trace")
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	// The unmutated serialization still parses — the cases above fail for
	// their own reasons, not because the fixture is broken.
	if _, err := ParseTrace([]byte(good)); err != nil {
		t.Fatalf("fixture does not parse: %v", err)
	}
}

func TestSpecValidate(t *testing.T) {
	tr := sampleTrace()
	if err := SpecForTrace(tr).Validate(2); err != nil {
		t.Fatalf("valid replay spec rejected: %v", err)
	}
	var nilSpec *Spec
	if err := nilSpec.Validate(3); err != nil {
		t.Fatalf("nil spec rejected: %v", err)
	}
	if nilSpec.Replay() || nilSpec.Recording() || nilSpec.Accounting() {
		t.Fatal("nil spec claims activity")
	}
	cases := []struct {
		name    string
		spec    *Spec
		clients int
		want    string
	}{
		{"client mismatch", SpecForTrace(tr), 3, "clients"},
		{"missing hash", &Spec{Trace: tr}, 2, "TraceHash"},
		{"stale hash", &Spec{Trace: tr, TraceHash: strings.Repeat("0", 64)}, 2, "match"},
		{"hash without trace", &Spec{TraceHash: strings.Repeat("0", 64)}, 2, "without"},
		{"trace and scenario", &Spec{Trace: tr, TraceHash: tr.Hash(),
			Scenario: Scenario{Name: ScenarioDiurnal}}, 2, "exclusive"},
		{"bad scenario", &Spec{Scenario: Scenario{Name: "nope"}}, 2, "scenario"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.spec.Validate(tc.clients)
			if err == nil {
				t.Fatal("invalid spec accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestCaptureBuildsValidTrace(t *testing.T) {
	cap := NewCapture(2, 0)
	h0, h1 := cap.Hook(0), cap.Hook(1)
	h0(0, 0, 120, 0, "")
	h1(500, 0, 64, 2048, "")
	h0(500, 3, 120, 0, ClassBulk)
	tr := cap.Trace()
	if err := tr.Validate(); err != nil {
		t.Fatalf("captured trace invalid: %v", err)
	}
	if len(tr.Records) != 3 || tr.Records[2].Class != ClassBulk || tr.Records[1].Resp != 2048 {
		t.Fatalf("capture mangled records: %+v", tr.Records)
	}
}
