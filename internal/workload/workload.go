// Package workload defines the simulator's traffic subsystem: a
// versioned, deterministic arrival-trace format (ncap-trace-v1), seeded
// scenario generators for the load shapes datacenter studies treat as
// first-class (diurnal curves, flash crowds, heavy-tailed responses,
// incast fan-in, many-flow scale-out), and the spec that wires either
// into a cluster run.
//
// Determinism contract: a generated trace is a pure function of
// (scenario, generation parameters, seed) — each client draws from its
// own private random stream in event order, so the byte-identical trace
// comes out at any worker count. A trace's canonical serialization has a
// SHA-256 hash that participates in the runner's content-addressed cache
// key, so two configs replaying the same schedule share a cache entry
// and two configs replaying different schedules never collide.
//
// Coordinated omission: replayed arrivals carry their *scheduled* send
// time. When pacing (the trace's min-gap) delays an actual send, latency
// is still charged from the schedule — the wrk2 correction — and the
// intended-vs-actual backlog is reported alongside the percentiles.
package workload

import (
	"fmt"

	"ncap/internal/sim"
)

// Spec selects the traffic source for a cluster run. The zero value (and
// a nil *Spec) is the legacy built-in burst-client traffic; a Trace or a
// non-stationary Scenario switches the clients to schedule replay.
type Spec struct {
	// Scenario selects a generated arrival schedule by name (see
	// scenario.go). The empty name and ScenarioStationary both mean "the
	// built-in burst clients" — a run so configured is byte-identical to
	// one with no Spec at all.
	Scenario Scenario `json:"scenario"`
	// TraceHash is the canonical SHA-256 of the replayed trace. It is the
	// trace's identity in the runner's cache key (the records themselves
	// are not serialized into the config), so it is required whenever
	// Trace is set; SpecForTrace fills it in.
	TraceHash string `json:"trace_hash,omitempty"`
	// Record captures the run's arrival schedule as a trace
	// (cluster.Result.Recorded) for replay. Recording runs are never
	// cached: the cache stores results, not traces.
	Record bool `json:"record,omitempty"`
	// Trace is the schedule to replay. Live data, excluded from config
	// serialization; TraceHash stands in for it in the cache key.
	Trace *Trace `json:"-"`
}

// SpecForTrace returns a replay spec for the given trace with its cache
// identity (TraceHash) filled in.
func SpecForTrace(t *Trace) *Spec {
	return &Spec{Trace: t, TraceHash: t.Hash()}
}

// Replay reports whether the spec replays a schedule (a trace or a
// generated scenario) instead of running the built-in burst clients.
func (s *Spec) Replay() bool {
	return s != nil && (s.Trace != nil || s.Scenario.Replay())
}

// Recording reports whether the run captures its arrival schedule.
func (s *Spec) Recording() bool { return s != nil && s.Record }

// Accounting reports whether intended-send accounting is active: replay
// and recording runs both count scheduled sends and pacing lag so a
// recorded run and its replay produce byte-identical results.
func (s *Spec) Accounting() bool { return s.Replay() || s.Recording() }

// Validate reports spec errors. clients is the cluster's client count; a
// replayed trace must have been recorded against the same fan-out.
func (s *Spec) Validate(clients int) error {
	if s == nil {
		return nil
	}
	if err := s.Scenario.Validate(); err != nil {
		return err
	}
	if s.Trace != nil {
		if s.Scenario.Replay() {
			return fmt.Errorf("workload: trace and scenario %q are mutually exclusive", s.Scenario.Name)
		}
		if err := s.Trace.Validate(); err != nil {
			return err
		}
		if s.Trace.Clients != clients {
			return fmt.Errorf("workload: trace recorded with %d clients, cluster has %d", s.Trace.Clients, clients)
		}
		switch {
		case s.TraceHash == "":
			return fmt.Errorf("workload: replayed trace needs its TraceHash (use workload.SpecForTrace)")
		case s.TraceHash != s.Trace.Hash():
			return fmt.Errorf("workload: TraceHash %.12s... does not match the attached trace", s.TraceHash)
		}
	} else if s.TraceHash != "" {
		return fmt.Errorf("workload: TraceHash set without a trace to replay")
	}
	return nil
}

// Capture accumulates a live run's sends into a trace. The cluster
// installs one hook per client; hooks are invoked in engine fire order,
// so the captured records come out globally time-sorted and the captured
// trace replays the run exactly.
type Capture struct {
	trace Trace
}

// NewCapture returns a capture for the given client fan-out. minGap is
// recorded as the trace's pacing floor: zero for live captures, whose
// sends are already spaced by the schedule that produced them.
func NewCapture(clients int, minGap sim.Duration) *Capture {
	return &Capture{trace: Trace{Clients: clients, MinGap: minGap}}
}

// Hook returns the per-client send callback (app.Client.OnSend shape).
func (c *Capture) Hook(client int) func(t sim.Time, flow, reqBytes, respBytes int, class string) {
	return func(t sim.Time, flow, reqBytes, respBytes int, class string) {
		c.trace.Records = append(c.trace.Records, Record{
			T: t, Client: client, Flow: flow,
			Req: reqBytes, Resp: respBytes, Class: class,
		})
	}
}

// Trace returns the captured schedule. The capture owns the backing
// array until the run is over; callers take it afterwards.
func (c *Capture) Trace() *Trace { return &c.trace }
