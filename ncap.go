// Package ncap is a Go reproduction of "NCAP: Network-Driven, Packet
// Context-Aware Power Management for Client-Server Architecture"
// (Alian et al., HPCA 2017).
//
// It bundles a deterministic discrete-event system simulator — a 4-core
// chip with P/C states, Linux-like cpufreq/cpuidle governors, an
// e1000-class NIC with interrupt moderation, a TCP/IP-over-Ethernet
// network, and Apache/Memcached-like OLDI workloads — together with the
// paper's mechanism: a NIC (and driver) that inspects packet context and
// proactively steers processor performance and sleep states.
//
// The simplest entry point runs one experiment:
//
//	res := ncap.Run(ncap.DefaultConfig(ncap.NcapCons, ncap.Apache(), 24_000))
//	fmt.Printf("p95=%v energy=%.1fJ\n", res.Latency.P95, res.EnergyJ)
//
// Policies match the paper's seven configurations (perf, ond, perf.idle,
// ond.idle, ncap.sw, ncap.cons, ncap.aggr). See DESIGN.md for the system
// inventory and EXPERIMENTS.md for the paper-versus-measured record.
package ncap

import (
	"ncap/internal/app"
	"ncap/internal/cluster"
	"ncap/internal/sim"
)

// Policy selects one of the paper's seven power-management configurations.
type Policy = cluster.Policy

// The seven policies of Sec. 6.
const (
	Perf     = cluster.Perf
	Ond      = cluster.Ond
	PerfIdle = cluster.PerfIdle
	OndIdle  = cluster.OndIdle
	NcapSW   = cluster.NcapSW
	NcapCons = cluster.NcapCons
	NcapAggr = cluster.NcapAggr
)

// AllPolicies returns the policies in the paper's presentation order.
func AllPolicies() []Policy { return cluster.AllPolicies() }

// ParsePolicy validates a policy name such as "ncap.cons".
func ParsePolicy(s string) (Policy, error) { return cluster.ParsePolicy(s) }

// Workload describes a server application profile.
type Workload = app.Profile

// Apache returns the paper's I/O-heavy web-serving workload model.
func Apache() Workload { return app.ApacheProfile() }

// Memcached returns the paper's memory-resident key-value workload model.
func Memcached() Workload { return app.MemcachedProfile() }

// WorkloadByName resolves "apache" or "memcached".
func WorkloadByName(name string) (Workload, error) { return app.ProfileByName(name) }

// Config describes one experiment; see cluster.Config for every knob.
type Config = cluster.Config

// Result carries an experiment's measurements.
type Result = cluster.Result

// LoadLevel indexes the paper's low/medium/high operating points.
type LoadLevel = cluster.LoadLevel

// Load levels from Sec. 6.
const (
	LowLoad    = cluster.LowLoad
	MediumLoad = cluster.MediumLoad
	HighLoad   = cluster.HighLoad
)

// LoadRPS returns the paper's request rate for a workload and level.
func LoadRPS(workload string, l LoadLevel) float64 { return cluster.LoadRPS(workload, l) }

// PaperSLA returns the paper's measured SLA (41 ms Apache, 3 ms Memcached).
func PaperSLA(workload string) sim.Duration { return cluster.PaperSLA(workload) }

// DefaultConfig returns a Table 1-parameterized experiment.
func DefaultConfig(policy Policy, workload Workload, loadRPS float64) Config {
	return cluster.DefaultConfig(policy, workload, loadRPS)
}

// Experiment is an assembled simulation ready to run.
type Experiment = cluster.Cluster

// NewExperiment assembles the four-node cluster for cfg. It panics on an
// invalid config; call cfg.Validate first when handling user input.
func NewExperiment(cfg Config) *Experiment { return cluster.New(cfg) }

// Run assembles and runs one experiment.
func Run(cfg Config) Result { return cluster.New(cfg).Run() }

// Convenient duration re-exports for configuring experiments.
const (
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)
