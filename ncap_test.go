package ncap_test

import (
	"testing"

	"ncap"
)

func TestPublicAPISmoke(t *testing.T) {
	cfg := ncap.DefaultConfig(ncap.NcapCons, ncap.Memcached(), 35_000)
	cfg.Warmup = 30 * ncap.Millisecond
	cfg.Measure = 100 * ncap.Millisecond
	cfg.Drain = 30 * ncap.Millisecond
	res := ncap.Run(cfg)
	if res.Completed == 0 || res.EnergyJ <= 0 {
		t.Fatalf("empty result: %+v", res)
	}
	if res.Policy != ncap.NcapCons || res.Workload != "memcached" {
		t.Fatalf("labels wrong: %v %v", res.Policy, res.Workload)
	}
}

func TestPublicAPIPolicies(t *testing.T) {
	if len(ncap.AllPolicies()) != 7 {
		t.Fatal("want seven policies")
	}
	p, err := ncap.ParsePolicy("ncap.aggr")
	if err != nil || p != ncap.NcapAggr {
		t.Fatalf("parse: %v %v", p, err)
	}
}

func TestPublicAPIWorkloads(t *testing.T) {
	if ncap.Apache().Name != "apache" || ncap.Memcached().Name != "memcached" {
		t.Fatal("workload names")
	}
	w, err := ncap.WorkloadByName("apache")
	if err != nil || w.Name != "apache" {
		t.Fatal("lookup")
	}
	if ncap.LoadRPS("apache", ncap.MediumLoad) != 45_000 {
		t.Fatal("load levels")
	}
	if ncap.PaperSLA("memcached") != 3*ncap.Millisecond {
		t.Fatal("paper SLA")
	}
}

func TestPublicAPIValidation(t *testing.T) {
	cfg := ncap.DefaultConfig(ncap.Perf, ncap.Apache(), 24_000)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	cfg.LoadRPS = -1
	if cfg.Validate() == nil {
		t.Fatal("invalid config accepted")
	}
}
