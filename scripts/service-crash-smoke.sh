#!/usr/bin/env bash
# service-crash-smoke.sh — end-to-end crash-recovery gate for ncapd.
#
#   1. Run an E11 sweep to completion on a clean server: the golden report.
#   2. On a second server, submit the identical sweep, kill -9 the daemon
#      once a few jobs have committed (but well before the sweep ends),
#      restart it over the same state directory, and wait for the resumed
#      sweep to finish.
#   3. The resumed report must be byte-identical to the golden one.
#
# Usage: scripts/service-crash-smoke.sh [workdir]   (workdir is recreated)
set -euo pipefail

WORK=${1:-service-smoke}
rm -rf "$WORK"
mkdir -p "$WORK"
BIN="$WORK/ncapd"
go build -o "$BIN" ./cmd/ncapd

ADDR_A=127.0.0.1:18791
ADDR_B=127.0.0.1:18792
# Windows sized so a single worker needs several seconds for the 21-job
# sweep — a wide, reliable window to land the kill -9 in.
SUBMIT=(-submit -family e11 -workload apache -warmup 100ms -measure 400ms -drain 100ms)
JOBS=21 # 3 loss rates x 7 policies

A_PID=""
B_PID=""
cleanup() {
  [ -n "$A_PID" ] && kill -9 "$A_PID" 2>/dev/null || true
  [ -n "$B_PID" ] && kill -9 "$B_PID" 2>/dev/null || true
}
trap cleanup EXIT

wait_healthy() { # addr
  for _ in $(seq 1 100); do
    if "$BIN" -addr "http://$1" -status >/dev/null 2>&1; then
      return 0
    fi
    sleep 0.1
  done
  echo "FAIL: server $1 never became healthy" >&2
  return 1
}

completed() { # addr id -> committed job count
  "$BIN" -addr "http://$1" -status -id "$2" 2>/dev/null |
    sed -n 's/.*completed=\([0-9]*\).*/\1/p'
}

echo "== golden run (uninterrupted) =="
"$BIN" -listen "$ADDR_A" -dir "$WORK/a" -workers 1 -q &
A_PID=$!
wait_healthy "$ADDR_A"
"$BIN" -addr "http://$ADDR_A" "${SUBMIT[@]}" -wait -q -o "$WORK/golden.json"
kill "$A_PID" && wait "$A_PID" 2>/dev/null || true
A_PID=""

echo "== crash run =="
"$BIN" -listen "$ADDR_B" -dir "$WORK/b" -workers 1 -q &
B_PID=$!
wait_healthy "$ADDR_B"
ID=$("$BIN" -addr "http://$ADDR_B" "${SUBMIT[@]}" -q)
echo "submitted $ID"

for _ in $(seq 1 400); do
  n=$(completed "$ADDR_B" "$ID")
  [ "${n:-0}" -ge 3 ] && break
  sleep 0.05
done
n=$(completed "$ADDR_B" "$ID")
n=${n:-0}
if [ "$n" -lt 1 ]; then
  echo "FAIL: no jobs committed before the crash point" >&2
  exit 1
fi
if [ "$n" -ge "$JOBS" ]; then
  echo "FAIL: sweep finished (completed=$n) before the crash point — nothing recovered" >&2
  exit 1
fi
echo "kill -9 at completed=$n/$JOBS"
kill -9 "$B_PID"
wait "$B_PID" 2>/dev/null || true

echo "== restart and resume =="
"$BIN" -listen "$ADDR_B" -dir "$WORK/b" -workers 1 -q &
B_PID=$!
wait_healthy "$ADDR_B"
"$BIN" -addr "http://$ADDR_B" -watch "$ID" -q > "$WORK/events.jsonl"
"$BIN" -addr "http://$ADDR_B" -fetch "$ID" -o "$WORK/resumed.json"
kill "$B_PID" && wait "$B_PID" 2>/dev/null || true
B_PID=""

cmp "$WORK/golden.json" "$WORK/resumed.json"
echo "OK: resumed report is byte-identical to the uninterrupted run ($(wc -c < "$WORK/golden.json") bytes)"
